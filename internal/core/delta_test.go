package core

import (
	"math/rand"
	"testing"

	"sbgp/internal/asgraph"
	"sbgp/internal/policy"
	"sbgp/internal/topogen"
)

// growDeployment returns a copy of dep enlarged by roughly k ASes drawn
// from rng: non-stubs join Full, stubs split between Full and Simplex,
// and occasionally an existing simplex member is promoted into Full
// (legal: additions only, on both sets). The returned added list is
// exactly the delta RunDelta must be told about.
func growDeployment(g *asgraph.Graph, dep *Deployment, k int, rng *rand.Rand) (*Deployment, []asgraph.AS) {
	n := g.N()
	var full, simplex *asgraph.Set
	if dep == nil {
		full, simplex = asgraph.NewSet(n), asgraph.NewSet(n)
	} else {
		full, simplex = dep.Full.Clone(), dep.Simplex.Clone()
	}
	var added []asgraph.AS
	for i := 0; i < k; i++ {
		v := asgraph.AS(rng.Intn(n))
		switch {
		case simplex.Has(v) && !full.Has(v) && rng.Intn(2) == 0:
			full.Add(v) // simplex → full promotion (still an addition)
			added = append(added, v)
		case full.Has(v) || simplex.Has(v):
			continue
		case g.IsAnyStub(v) && rng.Intn(2) == 0:
			simplex.Add(v)
			added = append(added, v)
		default:
			full.Add(v)
			added = append(added, v)
		}
	}
	return &Deployment{Full: full, Simplex: simplex}, added
}

// TestRunDeltaMatchesFromScratch is the tentpole contract: chained
// RunDelta along a nested deployment series is field-for-field equal to
// a from-scratch run at every step, for every security model, both
// local-preference variants, and all four shipped attack seeders.
func TestRunDeltaMatchesFromScratch(t *testing.T) {
	graphs := map[string]*asgraph.Graph{}
	tg, _ := topogen.MustGenerate(topogen.Params{N: 600, Seed: 31})
	graphs["topogen-600"] = tg
	graphs["random-60"] = randomGraph(41, 60)
	attacks := []Attack{nil, NoAttack{}, PathPadding{Hops: 3}, OriginSpoof{}, OneHopHijack{}}
	for name, g := range graphs {
		n := g.N()
		for _, lp := range []policy.LocalPref{policy.Standard, policy.LP2} {
			for _, model := range policy.Models {
				rng := rand.New(rand.NewSource(int64(model) + 10*int64(lp.K) + int64(n)))
				delta := NewEngineLP(g, model, lp)
				scratch := NewEngineLP(g, model, lp)
				for _, atk := range attacks {
					d := asgraph.AS(rng.Intn(n))
					m := asgraph.AS(rng.Intn(n))
					if m == d {
						m = asgraph.None
					}
					dep, _ := growDeployment(g, nil, n/20, rng)
					prev := delta.RunAttack(d, m, dep, atk)
					atkName := "default"
					if atk != nil {
						atkName = atk.Name()
					}
					for step := 0; step < 8; step++ {
						// Vary the delta size: single ASes, small bursts,
						// the occasional empty step, and one step that
						// secures the destination itself (flipping its
						// origin security).
						k := []int{0, 1, 1, 2, 5, 9, 1, 3}[step]
						next, added := growDeployment(g, dep, k, rng)
						if step == 5 && !next.Full.Has(d) && !next.Simplex.Has(d) {
							next.Full.Add(d)
							added = append(added, d)
						}
						got := delta.RunDelta(prev, added, nil, next, atk)
						want := scratch.RunAttack(d, m, next, atk)
						if !outcomesEqual(got, want) {
							t.Fatalf("%s %v %v attack %s step %d (d=%d m=%d, |added|=%d): RunDelta diverges from from-scratch run",
								name, model, lp, atkName, step, d, m, len(added))
						}
						prev, dep = got, next
					}
				}
				if delta.deltaFallbacks == 8*len(attacks) {
					t.Fatalf("%s %v %v: every RunDelta fell back to the from-scratch path; the incremental path was never exercised", name, model, lp)
				}
			}
		}
	}
}

// TestRunDeltaExternalPrev: prev need not alias the engine's own
// outcome — a retained Clone from another engine works identically, and
// the engine may interleave unrelated runs in between.
func TestRunDeltaExternalPrev(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 400, Seed: 32})
	n := g.N()
	rng := rand.New(rand.NewSource(5))
	for _, model := range policy.Models {
		producer := NewEngine(g, model)
		delta := NewEngine(g, model)
		scratch := NewEngine(g, model)
		dep, _ := growDeployment(g, nil, n/10, rng)
		d, m := asgraph.AS(rng.Intn(n)), asgraph.AS(rng.Intn(n))
		if m == d {
			m = asgraph.None
		}
		prev := producer.Run(d, m, dep).Clone()
		for step := 0; step < 4; step++ {
			// An unrelated run in between must not perturb the delta.
			delta.Run(asgraph.AS(rng.Intn(n)), asgraph.None, nil)
			next, added := growDeployment(g, dep, 1+rng.Intn(4), rng)
			got := delta.RunDelta(prev, added, nil, next, nil)
			want := scratch.Run(d, m, next)
			if !outcomesEqual(got, want) {
				t.Fatalf("%v step %d: RunDelta from external prev diverges", model, step)
			}
			prev, dep = got.Clone(), next
		}
	}
}

// TestRunDeltaFallback: a delta touching most of the graph crosses the
// adaptive threshold and falls back to the from-scratch path — still
// exactly equal, and the engine stays healthy for further runs.
func TestRunDeltaFallback(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 300, Seed: 33})
	n := g.N()
	for _, model := range policy.Models {
		delta := NewEngine(g, model)
		scratch := NewEngine(g, model)
		prev := delta.Run(2, 7, nil)
		// Secure every even AS at once: the dirty set immediately
		// exceeds n/4.
		full := asgraph.NewSet(n)
		var added []asgraph.AS
		for v := 0; v < n; v += 2 {
			full.Add(asgraph.AS(v))
			added = append(added, asgraph.AS(v))
		}
		next := &Deployment{Full: full}
		got := delta.RunDelta(prev, added, nil, next, nil)
		want := scratch.Run(2, 7, next)
		if !outcomesEqual(got, want) {
			t.Fatalf("%v: fallback RunDelta diverges from from-scratch run", model)
		}
		// A subsequent small delta on the fallback result is exact too.
		next2, added2 := growDeployment(g, next, 2, rand.New(rand.NewSource(1)))
		got2 := delta.RunDelta(got, added2, nil, next2, nil)
		want2 := scratch.Run(2, 7, next2)
		if !outcomesEqual(got2, want2) {
			t.Fatalf("%v: post-fallback RunDelta diverges", model)
		}
	}
}

// TestRunDeltaNoStateLeak: interleaving RunDelta chains with ordinary
// runs — including switching destinations, attackers, and strategies
// between deltas — leaves no dirty-set or snapshot state behind: every
// run equals the one a fresh engine computes. This is the engine half
// of the cancellation-cleanliness contract (the sweep layer's race test
// covers the scheduler half).
func TestRunDeltaNoStateLeak(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 400, Seed: 34})
	n := g.N()
	rng := rand.New(rand.NewSource(9))
	attacks := []Attack{nil, NoAttack{}, PathPadding{Hops: 4}}
	e := NewEngine(g, policy.Sec2nd)
	dep, _ := growDeployment(g, nil, n/10, rng)
	for round := 0; round < 10; round++ {
		d, m := asgraph.AS(rng.Intn(n)), asgraph.AS(rng.Intn(n))
		if m == d {
			m = asgraph.None
		}
		atk := attacks[rng.Intn(len(attacks))]
		prev := e.RunAttack(d, m, dep, atk)
		next, added := growDeployment(g, dep, 1+rng.Intn(3), rng)
		got := e.RunDelta(prev, added, nil, next, atk)
		want := NewEngine(g, policy.Sec2nd).RunAttack(d, m, next, atk)
		if !outcomesEqual(got, want) {
			t.Fatalf("round %d: delta run diverges from a fresh engine", round)
		}
		// The very next ordinary run must also be clean.
		d2 := asgraph.AS(rng.Intn(n))
		gotPlain := e.Run(d2, asgraph.None, dep)
		wantPlain := NewEngine(g, policy.Sec2nd).Run(d2, asgraph.None, dep)
		if !outcomesEqual(gotPlain, wantPlain) {
			t.Fatalf("round %d: ordinary run after RunDelta diverges from a fresh engine", round)
		}
		dep = next
	}
}

// condOriginAttack plants a helper origin only while the *destination*
// is still insecure — a deployment-dependent seeding, the hardest case
// for RunDelta: when the condition flips along a rollout the helper's
// root must *vanish*, even though the helper itself is nowhere near the
// added set and would otherwise stay pre-fixed from the previous fixed
// point.
type condOriginAttack struct{ helper asgraph.AS }

func (condOriginAttack) Name() string { return "cond-origin" }
func (a condOriginAttack) Seed(s *Seeder) {
	s.OriginateDest()
	s.AnnounceBogus(1)
	if !s.Dep.FullSecure(s.Dst) && a.helper != s.Dst && a.helper != s.Attacker {
		s.Originate(a.helper, 2, false, LabelDest)
	}
}

// TestRunDeltaVanishedRoot: a root present in prev but absent from the
// new seeding (deployment-dependent attacks) is recomputed as an
// ordinary AS, and its neighbors see the change — the mirror case of a
// changed origination.
func TestRunDeltaVanishedRoot(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 400, Seed: 35})
	n := g.N()
	const d, m = 5, 9
	// A helper that is not adjacent to the destination, so the vanish
	// cannot be masked by the added set's own dirty neighborhood.
	var helper asgraph.AS = asgraph.None
	for _, v := range asgraph.NonStubs(g) {
		if v == d || v == m || g.Rel(v, d) != asgraph.RelNone {
			continue
		}
		helper = v
		break
	}
	if helper == asgraph.None {
		t.Fatal("fixture broken: no non-stub helper away from the destination")
	}
	atk := condOriginAttack{helper: helper}
	for _, model := range policy.Models {
		delta := NewEngine(g, model)
		scratch := NewEngine(g, model)
		prev := delta.RunAttack(d, m, nil, atk)
		if prev.Class[helper] != policy.ClassOrigin {
			t.Fatalf("%v: fixture broken — helper AS%d not seeded under the empty deployment", model, helper)
		}
		// Securing the destination flips the seeding condition: the
		// helper's root — far from the added set — must disappear from
		// the delta run exactly as it does from a from-scratch run.
		dep := &Deployment{Full: asgraph.SetOf(n, d)}
		got := delta.RunDelta(prev, []asgraph.AS{d}, nil, dep, atk)
		want := scratch.RunAttack(d, m, dep, atk)
		if !outcomesEqual(got, want) {
			t.Fatalf("%v: RunDelta kept a vanished root (helper AS%d: class %v, want %v)",
				model, helper, got.Class[helper], want.Class[helper])
		}
		// A further step that removes nothing: the (still vanished)
		// root stays vanished and the delta stays exact.
		other := asgraph.NonStubs(g)[5]
		if other == helper {
			other = asgraph.NonStubs(g)[6]
		}
		dep2 := &Deployment{Full: asgraph.SetOf(n, d, other)}
		got2 := delta.RunDelta(got, []asgraph.AS{other}, nil, dep2, atk)
		want2 := scratch.RunAttack(d, m, dep2, atk)
		if !outcomesEqual(got2, want2) {
			t.Fatalf("%v: second delta step after a vanished root diverges", model)
		}
	}
}

// TestRunDeltaRevivedRoute: an AS with *no route at all* in prev can be
// revived by a delta — a neighbor's route-class flip re-enables an
// export that never reached it — and the revival must propagate to
// pre-fixed neighbors whose best route changes because of it. The
// fixture: under security 1st, w prefers a secure provider route via q
// over an insecure customer route via a, so w exports nothing upward
// and the provider chain x0 → x1 above it is unrouted; z (peer of x1)
// sits on a worse provider ladder. Securing a flips w to a secure
// customer route, revives x0 and x1, and hands z a preferred peer
// route — chained RunDelta must track the whole cascade.
func TestRunDeltaRevivedRoute(t *testing.T) {
	const (
		d  = asgraph.AS(0)
		w  = asgraph.AS(1)
		a  = asgraph.AS(2)
		q  = asgraph.AS(3)
		x0 = asgraph.AS(4)
		x1 = asgraph.AS(5)
		z  = asgraph.AS(6)
		y  = asgraph.AS(7)
	)
	// Pad with stubs under y so the interesting region stays far below
	// the adaptive fallback threshold — a tiny graph would silently
	// fall back to the from-scratch path and mask the cascade.
	const n = 108
	gb := asgraph.NewBuilder(n)
	gb.AddProviderCustomer(q, d)
	gb.AddProviderCustomer(q, w)
	gb.AddProviderCustomer(w, a)
	gb.AddProviderCustomer(a, d)
	gb.AddProviderCustomer(x0, w)
	gb.AddProviderCustomer(x1, x0)
	gb.AddPeer(x1, z)
	gb.AddProviderCustomer(y, z)
	gb.AddProviderCustomer(q, y)
	for pad := asgraph.AS(8); pad < n; pad++ {
		gb.AddProviderCustomer(y, pad)
	}
	g := gb.MustBuild()

	prevDep := &Deployment{Full: asgraph.SetOf(n, d, q, w)}
	nextDep := &Deployment{Full: asgraph.SetOf(n, d, q, w, a)}

	delta := NewEngine(g, policy.Sec1st)
	scratch := NewEngine(g, policy.Sec1st)

	prev := delta.RunAttack(d, asgraph.None, prevDep, NoAttack{})
	if prev.Class[x0] != policy.ClassNone || prev.Class[x1] != policy.ClassNone {
		t.Fatalf("fixture broken: x0/x1 routed in prev (%v, %v), want unrouted", prev.Class[x0], prev.Class[x1])
	}
	if prev.Class[z] != policy.ClassProvider {
		t.Fatalf("fixture broken: z class %v in prev, want provider", prev.Class[z])
	}
	// The chained (aliased-prev) call is the hardest case: snapshots are
	// taken from the engine's own outcome as it is rewritten.
	got := delta.RunDelta(prev, []asgraph.AS{a}, nil, nextDep, NoAttack{})
	want := scratch.RunAttack(d, asgraph.None, nextDep, NoAttack{})
	if want.Class[z] != policy.ClassPeer {
		t.Fatalf("fixture broken: z class %v from scratch, want the revived peer route", want.Class[z])
	}
	if !outcomesEqual(got, want) {
		t.Fatalf("RunDelta missed the revived route cascade: z = (%v len %d), want (%v len %d)",
			got.Class[z], got.Len[z], want.Class[z], want.Len[z])
	}
}

// TestDeploymentDelta covers the signed capability delta: the added
// and removed lists for growing, shrinking, and mixed steps, including
// the capability-neutral membership moves that must appear in neither.
func TestDeploymentDelta(t *testing.T) {
	mk := func(full, simplex []asgraph.AS) *Deployment {
		return &Deployment{Full: asgraph.SetOf(64, full...), Simplex: asgraph.SetOf(64, simplex...)}
	}
	small := mk([]asgraph.AS{1, 5}, []asgraph.AS{9})
	big := mk([]asgraph.AS{1, 5, 7}, []asgraph.AS{9, 11})

	check := func(name string, prev, next *Deployment, wantAdd, wantRem []asgraph.AS) {
		t.Helper()
		added, removed := DeploymentDelta(prev, next)
		eq := func(got, want []asgraph.AS) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if !eq(added, wantAdd) || !eq(removed, wantRem) {
			t.Errorf("%s: DeploymentDelta = (%v, %v), want (%v, %v)", name, added, removed, wantAdd, wantRem)
		}
	}
	check("grow", small, big, []asgraph.AS{7, 11}, nil)
	check("shrink", big, small, nil, []asgraph.AS{7, 11})
	check("from-baseline", nil, small, []asgraph.AS{1, 5, 9}, nil)
	check("to-baseline", small, nil, nil, []asgraph.AS{1, 5, 9})
	check("equal", small, small, nil, nil)
	check("both-nil", nil, nil, nil, nil)
	// Incomparable deployments yield a remove-then-add step.
	other := mk([]asgraph.AS{1, 8}, []asgraph.AS{12})
	check("sideways", small, other, []asgraph.AS{8, 12}, []asgraph.AS{5, 9})
	// A simplex→full promotion is a pure addition (origin capability is
	// unchanged, validation is gained); a full→simplex demotion is the
	// mirror pure removal.
	promoted := mk([]asgraph.AS{1, 5, 9}, []asgraph.AS{9})
	check("promotion", small, promoted, []asgraph.AS{9}, nil)
	check("demotion", promoted, small, nil, []asgraph.AS{9})
	// A Full member redundantly joining or leaving Simplex changes no
	// capability at all.
	redundant := mk([]asgraph.AS{1, 5}, []asgraph.AS{5, 9})
	check("redundant-join", small, redundant, nil, nil)
	check("redundant-leave", redundant, small, nil, nil)
}

// shrinkDeployment removes roughly k members (Full or Simplex) from
// dep, returning the shrunk deployment and the removed capability list
// RunDelta must be told about.
func shrinkDeployment(dep *Deployment, k int, rng *rand.Rand) (*Deployment, []asgraph.AS) {
	full, simplex := dep.Full.Clone(), dep.Simplex.Clone()
	members := full.Members()
	sx := simplex.Members()
	var removed []asgraph.AS
	for i := 0; i < k; i++ {
		pick := rng.Intn(len(members) + len(sx))
		if pick < len(members) {
			v := members[pick]
			if !full.Has(v) {
				continue
			}
			full.Remove(v)
			removed = append(removed, v)
			if simplex.Has(v) {
				// Still origin-capable: a demotion, not a union exit —
				// the removal list entry stays (Full capability lost).
				continue
			}
		} else {
			v := sx[pick-len(members)]
			if !simplex.Has(v) || full.Has(v) {
				continue
			}
			simplex.Remove(v)
			removed = append(removed, v)
		}
	}
	return &Deployment{Full: full, Simplex: simplex}, removed
}

// TestRunDeltaRemovalMatchesFromScratch pins the removal-delta
// contract: chained RunDelta along a series that grows AND shrinks —
// including pure-shrink steps and mixed remove-then-add steps between
// incomparable deployments — is field-for-field equal to a from-scratch
// run at every step, for every security model, both local-preference
// variants, and all four shipped attack seeders. The incrementally
// maintained happy bounds must agree with a full label scan throughout.
func TestRunDeltaRemovalMatchesFromScratch(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 600, Seed: 36})
	n := g.N()
	attacks := []Attack{nil, NoAttack{}, PathPadding{Hops: 3}, OriginSpoof{}}
	for _, lp := range []policy.LocalPref{policy.Standard, policy.LP2} {
		for _, model := range policy.Models {
			rng := rand.New(rand.NewSource(100*int64(lp.K) + int64(model)))
			delta := NewEngineLP(g, model, lp)
			scratch := NewEngineLP(g, model, lp)
			for _, atk := range attacks {
				d := asgraph.AS(rng.Intn(n))
				m := asgraph.AS(rng.Intn(n))
				if m == d {
					m = asgraph.None
				}
				// Start from a mid-sized deployment that includes the
				// destination, so shrink steps can strip security off
				// live secure routes (the reverse-reachability case).
				dep, _ := growDeployment(g, nil, n/10, rng)
				dep.Full.Add(d)
				prev := delta.RunAttack(d, m, dep, atk)
				for step := 0; step < 8; step++ {
					var next *Deployment
					var added, removed []asgraph.AS
					switch step % 4 {
					case 0, 2: // shrink
						next, removed = shrinkDeployment(dep, 1+rng.Intn(6), rng)
					case 1: // grow
						next, added = growDeployment(g, dep, 1+rng.Intn(6), rng)
					case 3: // sideways: remove some, add others
						mid, rem := shrinkDeployment(dep, 1+rng.Intn(4), rng)
						next, added = growDeployment(g, mid, 1+rng.Intn(4), rng)
						removed = rem
					}
					got := delta.RunDelta(prev, added, removed, next, atk)
					want := scratch.RunAttack(d, m, next, atk)
					if !outcomesEqual(got, want) {
						t.Fatalf("%v %v step %d (d=%d m=%d, +%d/-%d): removal RunDelta diverges from from-scratch run",
							model, lp, step, d, m, len(added), len(removed))
					}
					lo, hi := delta.HappyBounds()
					wlo, whi := want.HappyBounds()
					if lo != wlo || hi != whi {
						t.Fatalf("%v %v step %d: incremental happy bounds (%d,%d) diverge from scan (%d,%d)",
							model, lp, step, lo, hi, wlo, whi)
					}
					prev, dep = got, next
				}
			}
			if delta.deltaFallbacks == 8*len(attacks) {
				t.Fatalf("%v %v: every removal RunDelta fell back; the incremental path was never exercised", model, lp)
			}
		}
	}
}

// TestRunDeltaGrowThenShrink is the rollback regression: a chain that
// grows a deployment for several steps and then walks it back down the
// same slope, ending at the exact starting membership. Every step —
// especially the first shrink after the peak, where the whole secure
// overlay built by the grows starts tearing down — must equal the
// from-scratch run, and the final outcome must equal the chain's first.
func TestRunDeltaGrowThenShrink(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 500, Seed: 37})
	n := g.N()
	nonStubs := asgraph.NonStubs(g)
	const d, m = 11, 23
	for _, model := range policy.Models {
		delta := NewEngine(g, model)
		scratch := NewEngine(g, model)
		base := &Deployment{Full: asgraph.SetOf(n, d)}
		deps := []*Deployment{base}
		for k := 1; k <= 6; k++ {
			next := deps[len(deps)-1].Full.Clone()
			next.Add(nonStubs[k])
			next.Add(nonStubs[k+20])
			deps = append(deps, &Deployment{Full: next})
		}
		// Up the slope, then back down to the start.
		series := append([]*Deployment{}, deps...)
		for k := len(deps) - 2; k >= 0; k-- {
			series = append(series, deps[k])
		}
		prev := delta.RunAttack(d, m, series[0], nil)
		first := prev.Clone()
		for i := 1; i < len(series); i++ {
			added, removed := DeploymentDelta(series[i-1], series[i])
			got := delta.RunDelta(prev, added, removed, series[i], nil)
			want := scratch.RunAttack(d, m, series[i], nil)
			if !outcomesEqual(got, want) {
				t.Fatalf("%v: grow-then-shrink chain diverges at step %d (+%d/-%d)",
					model, i, len(added), len(removed))
			}
			prev = got
		}
		if !outcomesEqual(prev, first) {
			t.Fatalf("%v: walking the chain back down did not restore the initial outcome", model)
		}
		if delta.deltaFallbacks == len(series)-1 {
			t.Fatalf("%v: every grow-then-shrink step fell back to from-scratch", model)
		}
	}
}

// TestRunDeltaHappyBoundsChained: Engine.HappyBounds equals the O(n)
// label scan at every step of a growing chain (the sweep scheduler
// reads the incremental counts instead of re-scanning).
func TestRunDeltaHappyBoundsChained(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 400, Seed: 38})
	n := g.N()
	rng := rand.New(rand.NewSource(21))
	e := NewEngine(g, policy.Sec3rd)
	dep, _ := growDeployment(g, nil, n/20, rng)
	prev := e.RunAttack(3, 9, dep, nil)
	for step := 0; step < 6; step++ {
		lo, hi := e.HappyBounds()
		wlo, whi := prev.HappyBounds()
		if lo != wlo || hi != whi {
			t.Fatalf("step %d: HappyBounds (%d,%d) != scan (%d,%d)", step, lo, hi, wlo, whi)
		}
		next, added := growDeployment(g, dep, 1+rng.Intn(4), rng)
		prev = e.RunDelta(prev, added, nil, next, nil)
		dep = next
	}
}

// TestWithDeltaThreshold: a zero threshold disables the incremental
// path (every call falls back, still exact); a threshold of 1 keeps
// even a huge delta incremental; results match from-scratch either way.
func TestWithDeltaThreshold(t *testing.T) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 300, Seed: 39})
	n := g.N()
	scratch := NewEngine(g, policy.Sec2nd)
	big := asgraph.NewSet(n)
	var added []asgraph.AS
	for v := 0; v < n; v += 2 {
		big.Add(asgraph.AS(v))
		added = append(added, asgraph.AS(v))
	}
	next := &Deployment{Full: big}
	want := scratch.Run(4, 9, next)

	off := NewEngine(g, policy.Sec2nd, WithDeltaThreshold(0))
	prev := off.Run(4, 9, nil)
	if got := off.RunDelta(prev, []asgraph.AS{2}, nil, &Deployment{Full: asgraph.SetOf(n, 2)}, nil); got == nil {
		t.Fatal("nil outcome")
	}
	if off.deltaFallbacks != 1 {
		t.Fatalf("threshold 0: %d fallbacks, want 1 (incremental path disabled)", off.deltaFallbacks)
	}

	wide := NewEngine(g, policy.Sec2nd, WithDeltaThreshold(1))
	prev = wide.Run(4, 9, nil)
	got := wide.RunDelta(prev, added, nil, next, nil)
	if !outcomesEqual(got, want) {
		t.Fatal("threshold 1: oversized delta diverges from from-scratch run")
	}
	if wide.deltaFallbacks != 0 {
		t.Fatalf("threshold 1: %d fallbacks, want 0", wide.deltaFallbacks)
	}
}
