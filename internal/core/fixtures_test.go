package core

import (
	"sbgp/internal/asgraph"
	"sbgp/internal/policy"
)

// This file encodes the paper's hand-worked example topologies as test
// fixtures. AS numbers from the figures map to dense indices; where a
// figure leaves edges ambiguous, the fixture is the minimal topology
// consistent with the routes described in the prose, and the comments
// spell out the intended route sets.

// fig2 is the protocol-downgrade example of Figure 2 / Section 3.2: the
// attacker m pretends to be adjacent to the Tier 1 destination AS 3356
// (Level 3) and steals webhost AS 21740's traffic under the security 2nd
// and 3rd models, because the bogus 4-hop *peer* route via Cogent AS 174
// has better local preference than the legitimate 1-hop *provider* route.
type fig2 struct {
	g                            *asgraph.Graph
	d, m, as21740, as174, as3491 asgraph.AS
	as3536                       asgraph.AS
	dep                          *Deployment
}

func newFig2() *fig2 {
	// Indices: 0=3356(d) 1=21740 2=174 3=3491 4=3536 5=m
	f := &fig2{d: 0, as21740: 1, as174: 2, as3491: 3, as3536: 4, m: 5}
	b := asgraph.NewBuilder(6)
	b.AddProviderCustomer(f.d, f.as21740) // 21740 buys from Level3
	b.AddProviderCustomer(f.d, f.as3536)  // DoD stub, single-homed on d
	b.AddPeer(f.as174, f.d)               // Cogent peers with Level3
	b.AddPeer(f.as174, f.as21740)         // Cogent peers with the webhost
	b.AddProviderCustomer(f.as174, f.as3491)
	b.AddProviderCustomer(f.as3491, f.m) // attacker is a customer of PCCW
	f.g = b.MustBuild()
	// "All T1s and their stubs and the CPs secure": here 3356 and its
	// stub customers 21740 and 3536.
	f.dep = &Deployment{Full: asgraph.SetOf(6, f.d, f.as21740, f.as3536)}
	return f
}

// fig14damage captures the collateral-damage mechanism of Figure 14
// (security 2nd): insecure AS 52142 ("s") is happy before deployment
// because its provider AS 5617 ("p") uses a short insecure route; after
// 5617 turns secure it switches to a much longer secure route of the same
// LP class (security 2nd ranks SecP above length), pushing s's legitimate
// route length above the bogus one.
//
// Routes (lengths include the attacker's claimed hop to d):
//
//	p before: [q1 d]            len 2, provider, insecure
//	p after:  [q2 c2 c1 d]      len 4, provider, secure
//	s legit:  via p             len 3 before, 5 after
//	s bogus:  [w w2 m (d)]      len 4, provider, insecure
type fig14damage struct {
	g             *asgraph.Graph
	d, m          asgraph.AS
	p, s          asgraph.AS
	q1, q2        asgraph.AS
	c1, c2, w, w2 asgraph.AS
	after         *Deployment
}

func newFig14damage() *fig14damage {
	f := &fig14damage{d: 0, q1: 1, p: 2, s: 3, c1: 4, c2: 5, q2: 6, w: 7, w2: 8, m: 9}
	b := asgraph.NewBuilder(10)
	b.AddProviderCustomer(f.q1, f.d) // q1 provides d: insecure short path
	b.AddProviderCustomer(f.q1, f.p) // p buys from q1
	b.AddProviderCustomer(f.c1, f.d) // secure chain d↑c1↑c2↑q2
	b.AddProviderCustomer(f.c2, f.c1)
	b.AddProviderCustomer(f.q2, f.c2)
	b.AddProviderCustomer(f.q2, f.p) // p also buys from q2
	b.AddProviderCustomer(f.p, f.s)  // s buys from p
	b.AddProviderCustomer(f.w, f.s)  // s also buys from w
	b.AddProviderCustomer(f.w, f.w2) // bogus chain m↑w2↑w
	b.AddProviderCustomer(f.w2, f.m)
	f.g = b.MustBuild()
	f.after = &Deployment{Full: asgraph.SetOf(10, f.d, f.c1, f.c2, f.q2, f.p)}
	return f
}

// fig14benefit captures the collateral-benefit mechanism of Figure 14
// (security 2nd, the AS 5166 / Cogent story): insecure single-homed s is
// unhappy before deployment because its provider p prefers a short bogus
// customer route; after p turns secure, p switches to a longer secure
// customer route (same LP class) and s becomes happy collaterally.
//
//	p before: [ca m (d)]      len 3, customer, insecure (bogus)
//	p after:  [cb cb2 cb3 d]  len 4, customer, secure
type fig14benefit struct {
	g            *asgraph.Graph
	d, m         asgraph.AS
	p, s         asgraph.AS
	ca           asgraph.AS
	cb, cb2, cb3 asgraph.AS
	after        *Deployment
}

func newFig14benefit() *fig14benefit {
	f := &fig14benefit{d: 0, p: 1, s: 2, ca: 3, cb: 4, cb2: 5, cb3: 6, m: 7}
	b := asgraph.NewBuilder(8)
	b.AddProviderCustomer(f.cb3, f.d) // legit chain d↑cb3↑cb2↑cb↑p
	b.AddProviderCustomer(f.cb2, f.cb3)
	b.AddProviderCustomer(f.cb, f.cb2)
	b.AddProviderCustomer(f.p, f.cb)
	b.AddProviderCustomer(f.ca, f.m) // bogus chain m↑ca↑p
	b.AddProviderCustomer(f.p, f.ca)
	b.AddProviderCustomer(f.p, f.s) // single-homed insecure customer
	f.g = b.MustBuild()
	f.after = &Deployment{Full: asgraph.SetOf(8, f.d, f.cb3, f.cb2, f.cb, f.p)}
	return f
}

// fig15benefit reproduces Figure 15's collateral benefit in the security
// 3rd model: AS 3267 has two equal-length insecure peer routes — one
// legitimate (via AS 7922) and one bogus (via AS 12389) — and its
// tiebreak favors the attacker; with S*BGP the legitimate route becomes
// secure and SecP (below SP, above TB) rescues 3267 and, collaterally,
// its insecure customer AS 34223.
//
// The attacker-side peer deliberately has the lower index so the engine's
// deterministic tiebreak ("lowest next hop") favors the attacker before
// deployment, exactly like the unlucky tiebreak in the paper.
type fig15benefit struct {
	g                                *asgraph.Graph
	d, m                             asgraph.AS
	as12389, as3267, as34223, as7922 asgraph.AS
	hop                              asgraph.AS
	after                            *Deployment
}

func newFig15benefit() *fig15benefit {
	f := &fig15benefit{d: 0, as12389: 1, as3267: 2, as34223: 3, as7922: 4, m: 5, hop: 6}
	b := asgraph.NewBuilder(7)
	b.AddProviderCustomer(f.hop, f.d) // legit chain d↑hop↑7922
	b.AddProviderCustomer(f.as7922, f.hop)
	b.AddPeer(f.as3267, f.as7922)              // legit peer route [7922 hop d], len 3
	b.AddProviderCustomer(f.as12389, f.m)      // bogus chain m↑12389
	b.AddPeer(f.as3267, f.as12389)             // bogus peer route [12389 m (d)], len 3
	b.AddProviderCustomer(f.as3267, f.as34223) // insecure customer
	f.g = b.MustBuild()
	f.after = &Deployment{Full: asgraph.SetOf(7, f.d, f.hop, f.as7922, f.as3267)}
	return f
}

// fig17damage reproduces Figure 17 / Appendix A: collateral damage in the
// security 1st model caused by the export rule Ex. Secure AS 7474
// abandons its customer route (which it exported to its peer AS 4805) for
// a secure provider route (which Ex forbids exporting to a peer), leaving
// 4805 with only the bogus provider route via AS 2647.
type fig17damage struct {
	g                      *asgraph.Graph
	d, m                   asgraph.AS
	as4805, as7474, as7473 asgraph.AS
	as17477, as2647        asgraph.AS
	after                  *Deployment
}

func newFig17damage() *fig17damage {
	f := &fig17damage{d: 0, as4805: 1, as7474: 2, as7473: 3, as17477: 4, as2647: 5, m: 6}
	b := asgraph.NewBuilder(7)
	b.AddProviderCustomer(f.as17477, f.d)      // 17477 provides d
	b.AddProviderCustomer(f.as7474, f.as17477) // customer route [17477 d] at 7474
	b.AddPeer(f.as4805, f.as7474)              // 4805 peers with Optus 7474
	b.AddProviderCustomer(f.as7473, f.as7474)  // 7473 provides 7474
	b.AddProviderCustomer(f.as7473, f.d)       // secure provider route [7473 d]
	b.AddProviderCustomer(f.as2647, f.as4805)  // 2647 provides Orange 4805
	b.AddProviderCustomer(f.as2647, f.m)       // bogus route [2647 m (d)]
	f.g = b.MustBuild()
	f.after = &Deployment{Full: asgraph.SetOf(7, f.d, f.as7473, f.as7474)}
	return f
}

// lineGraph builds a provider chain d=0 ← 1 ← 2 ← ... where AS i buys
// transit from AS i-1.
func lineGraph(n int) *asgraph.Graph {
	b := asgraph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddProviderCustomer(asgraph.AS(i-1), asgraph.AS(i))
	}
	return b.MustBuild()
}

var allModels = []policy.Model{policy.Sec1st, policy.Sec2nd, policy.Sec3rd}
