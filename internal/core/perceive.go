package core

import (
	"sbgp/internal/asgraph"
	"sbgp/internal/policy"
)

// This file implements the deployment-invariant partitioning of
// Section 4.3 / Appendix E: with respect to a fixed attacker-destination
// pair (m, d), every source AS is doomed (routes to the attacker no
// matter which ASes are secure), immune (routes to the destination no
// matter which ASes are secure), or protectable.
//
// Following Appendix E, the partition is computed from the S = ∅ routing
// outcome (Corollaries E.1/E.2 show the class — and for security 3rd
// also the length — of every AS's stabilized route is the same for every
// deployment S):
//
//   - security 3rd (E.1): an AS's fate is decided by its best
//     (class, length) candidates in the S = ∅ run — exactly the
//     three-valued labels the outcome engine already computes;
//   - security 2nd (E.2): security outranks length within a class, so
//     the candidate pool widens to *every* available route of the AS's
//     stabilized class, of any length;
//   - security 1st (E.3): only perceivability matters — an AS is doomed
//     iff every valley-free path to the destination crosses the
//     attacker, immune iff it cannot perceive the attacker at all.

// Category is the Table 2 status of a source with respect to an
// attacker-destination pair, over all possible deployments.
type Category uint8

const (
	// CatImmune: happy regardless of which ASes are secure.
	CatImmune Category = iota
	// CatDoomed: unhappy regardless of which ASes are secure.
	CatDoomed
	// CatProtectable: fate depends on the deployment.
	CatProtectable

	// NumCategories is the number of categories.
	NumCategories = int(CatProtectable) + 1
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatImmune:
		return "immune"
	case CatDoomed:
		return "doomed"
	default:
		return "protectable"
	}
}

const infLen = int32(1) << 30

// Partition holds, for one (m, d) pair, every source AS's category under
// each of the three security models. Slices are owned by the Partitioner
// and valid until its next Run.
type Partition struct {
	Dst      asgraph.AS
	Attacker asgraph.AS
	// Cat[model][v] is v's category under that security model.
	Cat [policy.NumModels][]Category
}

// Counts returns the number of immune, doomed, and protectable source
// ASes under the given model.
func (p *Partition) Counts(m policy.Model) (immune, doomed, protectable int) {
	for v, c := range p.Cat[m] {
		if asgraph.AS(v) == p.Dst || asgraph.AS(v) == p.Attacker {
			continue
		}
		switch c {
		case CatImmune:
			immune++
		case CatDoomed:
			doomed++
		default:
			protectable++
		}
	}
	return
}

// Partitioner computes partitions; like Engine it owns reusable scratch
// and must not be shared across goroutines.
type Partitioner struct {
	g   *asgraph.Graph
	lp  policy.LocalPref
	eng *Engine // S = ∅ outcome provider (all models agree at S = ∅)

	part Partition

	// topo is a topological order of the provider DAG with customers
	// before their providers; the security 2nd possibility recursion
	// walks it forward for customer-class ASes and backward for
	// provider-class ASes.
	topo []asgraph.AS

	// mask2[v] is the security 2nd endpoint-possibility bitmask.
	mask2 []uint8

	// structural perceivable-reachability scratch for the security 1st
	// partition (Appendix E.3). up marks ASes reachable via a pure
	// customer chain during one reachable call; queue is the shared BFS
	// queue, drained with a head index so its capacity survives runs.
	dReach, mReach, up []bool
	queue              []asgraph.AS
}

// NewPartitioner returns a partitioner under the given local-preference
// variant (policy.Standard for the paper's main results, policy.LP2 for
// Appendix K).
func NewPartitioner(g *asgraph.Graph, lp policy.LocalPref) *Partitioner {
	n := g.N()
	p := &Partitioner{
		g: g, lp: lp,
		eng: NewEngineLP(g, policy.Sec3rd, lp),
	}
	p.attachScratch(n)
	// Kahn's algorithm over customer→provider edges: an AS appears
	// after all of its customers.
	indeg := make([]int, n)
	for v := asgraph.AS(0); int(v) < n; v++ {
		indeg[v] = g.CustomerDegree(v)
	}
	queue := make([]asgraph.AS, 0, n)
	for v := asgraph.AS(0); int(v) < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		p.topo = append(p.topo, v)
		for _, u := range g.Providers(v) {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(p.topo) != n {
		panic("core: customer-provider cycle; run asgraph.Validate first")
	}
	return p
}

// attachScratch backs the partitioner's fixed-size per-AS scratch — the
// three category arrays, the sec-2nd mask, and the three reachability
// bitmaps — with one arena allocation, mirroring the engine's slab
// discipline (slab.go). The BFS queue stays a growable slice: reachable
// drains it by head index, so its capacity is retained across runs.
func (p *Partitioner) attachScratch(n int) {
	if n == 0 {
		return
	}
	s := newSlab((len(p.part.Cat) + 4) * alignUp(n))
	for i := range p.part.Cat {
		p.part.Cat[i] = sectionOf[Category](s, n)
	}
	p.mask2 = sectionOf[uint8](s, n)
	p.dReach = sectionOf[bool](s, n)
	p.mReach = sectionOf[bool](s, n)
	p.up = sectionOf[bool](s, n)
}

// Run computes the partition for attacker m and destination d. The
// returned Partition is owned by the partitioner and valid until the
// next Run.
func (p *Partitioner) Run(d, m asgraph.AS) *Partition {
	if d == m || m == asgraph.None {
		panic("core: partition requires a distinct attacker")
	}
	p.part.Dst, p.part.Attacker = d, m
	o := p.eng.Run(d, m, nil) // S = ∅; every model yields this outcome

	p.reachable(d, m, p.dReach)
	p.reachable(m, d, p.mReach)

	n := p.g.N()
	for v := asgraph.AS(0); int(v) < n; v++ {
		if v == d || v == m {
			for mi := range p.part.Cat {
				p.part.Cat[mi][v] = CatImmune
			}
			continue
		}

		// Security 1st (Appendix E.3): structural perceivability only.
		switch {
		case !p.mReach[v]:
			p.part.Cat[policy.Sec1st][v] = CatImmune
		case !p.dReach[v]:
			p.part.Cat[policy.Sec1st][v] = CatDoomed
		default:
			p.part.Cat[policy.Sec1st][v] = CatProtectable
		}

		// Security 3rd (Corollary E.1): the S = ∅ label is the verdict —
		// the stabilized (class, length) is deployment-invariant, and
		// the best candidates' endpoints decide the category.
		p.part.Cat[policy.Sec3rd][v] = labelCategory(o.Label[v])
	}

	// Security 2nd (Corollary E.2): same class, any length — with the
	// possibilities propagated recursively, because a secure AS may
	// switch to a *longer* same-class route whose endpoints its
	// shortest candidates never see.
	p.computeSec2(o)
	for v := asgraph.AS(0); int(v) < n; v++ {
		if v == d || v == m {
			continue
		}
		p.part.Cat[policy.Sec2nd][v] = maskCategory(p.mask2[v])
	}
	return &p.part
}

func labelCategory(l Label) Category {
	switch l {
	case LabelDest:
		return CatImmune
	case LabelAttacker:
		return CatDoomed
	case LabelAmbig:
		return CatProtectable
	default: // unrouted: never routes to the attacker
		return CatImmune
	}
}

const (
	maskD uint8 = 1 << iota // the AS may end up routing to the destination
	maskM                   // the AS may end up routing to the attacker
)

func maskCategory(m uint8) Category {
	switch m {
	case maskD, 0: // unrouted ASes never reach the attacker
		return CatImmune
	case maskM:
		return CatDoomed
	default:
		return CatProtectable
	}
}

// computeSec2 fills mask2 with each AS's endpoint possibilities under
// the security 2nd model, per Corollary E.2: an AS's stabilized route
// class is deployment-invariant, and within that class security outranks
// length, so the AS may end up behind *any* same-class candidate —
// recursively. Customer-class ASes are resolved up the provider DAG
// (their candidates are their customers), then peer-class ASes (their
// candidates hold customer routes), then provider-class ASes down the
// DAG (their candidates are their providers, of any class).
func (p *Partitioner) computeSec2(o *Outcome) {
	g := p.g
	for v := range p.mask2 {
		p.mask2[v] = 0
	}
	p.mask2[o.Dst] = maskD
	if o.Attacker != asgraph.None {
		p.mask2[o.Attacker] = maskM
	}

	for _, v := range p.topo { // customers before providers
		if o.Class[v] == policy.ClassCustomer {
			p.mask2[v] = p.pool(o, v, g.Customers(v), false)
		}
	}
	for v := asgraph.AS(0); int(v) < g.N(); v++ {
		if o.Class[v] == policy.ClassPeer {
			p.mask2[v] = p.pool(o, v, g.Peers(v), false)
		}
	}
	for i := len(p.topo) - 1; i >= 0; i-- { // providers before customers
		v := p.topo[i]
		if o.Class[v] == policy.ClassProvider {
			p.mask2[v] = p.pool(o, v, g.Providers(v), true)
		}
	}
}

// pool merges the endpoint possibilities of v's same-class candidates.
// Export rule: customer- and peer-class routes at v require the
// candidate w to hold a customer route (or be an origin); provider-class
// routes accept any routed w. Under LPk the class is the rank bucket, so
// the candidate's (S = ∅) length must land in v's bucket; under standard
// LP the rank check is a no-op.
func (p *Partitioner) pool(o *Outcome, v asgraph.AS, nbrs []asgraph.AS, wide bool) uint8 {
	rank := p.lp.RankClass(o.Class[v], int(o.Len[v]))
	var mask uint8
	for _, w := range nbrs {
		switch o.Class[w] {
		case policy.ClassNone:
			continue
		case policy.ClassCustomer, policy.ClassOrigin:
		default:
			if !wide {
				continue
			}
		}
		if p.lp.RankClass(o.Class[v], int(o.Len[w])+1) != rank {
			continue
		}
		mask |= p.mask2[w]
	}
	return mask
}

// reachable marks every AS with at least one valley-free (perceivable)
// route to root r that avoids x: a customer-route BFS upward, one peer
// hop, then downward closure. This is Definition B.1 reachability,
// choice-independent, as Appendix E.3 requires for the security 1st
// partition.
func (p *Partitioner) reachable(r, x asgraph.AS, reach []bool) {
	g := p.g
	n := g.N()
	clear(reach)
	up := p.up // reachable via a pure customer chain
	clear(up)

	reach[r] = true
	up[r] = true
	// Both BFS passes drain the queue by head index: re-slicing away the
	// head would shed capacity and force a reallocation every few runs.
	q := p.queue[:0]
	q = append(q, r)
	for head := 0; head < len(q); head++ {
		v := q[head]
		for _, u := range g.Providers(v) {
			if u != x && u != r && !up[u] {
				up[u] = true
				reach[u] = true
				q = append(q, u)
			}
		}
	}
	// One peer hop off the customer chain (or off the root itself).
	for v := asgraph.AS(0); int(v) < n; v++ {
		if !up[v] || v == x {
			continue
		}
		for _, u := range g.Peers(v) {
			if u != x && u != r {
				reach[u] = true
			}
		}
	}
	// Downward closure: anything reachable announces to customers.
	q = q[:0]
	for v := asgraph.AS(0); int(v) < n; v++ {
		if reach[v] {
			q = append(q, v)
		}
	}
	for head := 0; head < len(q); head++ {
		v := q[head]
		for _, u := range g.Customers(v) {
			if u != x && u != r && !reach[u] {
				reach[u] = true
				q = append(q, u)
			}
		}
	}
	p.queue = q[:0]
}
