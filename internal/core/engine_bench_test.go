package core

import (
	"testing"

	"sbgp/internal/asgraph"
	"sbgp/internal/policy"
	"sbgp/internal/topogen"
)

// BenchmarkEngineRun measures one routing-outcome computation on a
// 4000-AS topology — the unit cost every grid experiment pays per
// (attacker, destination) pair.
func BenchmarkEngineRun(b *testing.B) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 4000, Seed: 1})
	full := asgraph.NewSet(g.N())
	for v := 0; v < g.N(); v += 3 {
		full.Add(asgraph.AS(v))
	}
	dep := &Deployment{Full: full}
	for _, bc := range []struct {
		name string
		opts []Option
	}{
		{"epoch-reset", nil},
		{"full-clear", []Option{WithFullClearReset()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e := NewEngine(g, policy.Sec2nd, bc.opts...)
			// One warm-up run, so even -benchtime 1x (the committed
			// baseline configuration) measures the steady state the
			// arena contract is about, not first-run scratch growth.
			_ = e.Run(10, 200, dep)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.Run(asgraph.AS(i%64+10), asgraph.AS(i%97+200), dep)
			}
		})
	}
}

// BenchmarkEngineRunDelta measures one step of an incremental rollout
// chain on a 4000-AS topology — a single AS turning secure between
// consecutive runs — against the from-scratch run the delta replaces.
func BenchmarkEngineRunDelta(b *testing.B) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 4000, Seed: 1})
	n := g.N()
	nonStubs := asgraph.NonStubs(g)
	// A chain of deployments each one non-stub larger than the last.
	const chainLen = 64
	deps := make([]*Deployment, chainLen)
	added := make([][]asgraph.AS, chainLen)
	full := asgraph.NewSet(n)
	for v := 0; v < n; v += 3 {
		full.Add(asgraph.AS(v))
	}
	cand := len(nonStubs) - 1
	for i := 0; i < chainLen; i++ {
		// Skip candidates already secure so every measured step adds
		// exactly one AS — no free empty-delta iterations.
		for cand >= 0 && full.Has(nonStubs[cand]) {
			cand--
		}
		if cand < 0 {
			b.Fatal("ran out of insecure non-stubs for the chain")
		}
		a := nonStubs[cand]
		full.Add(a)
		added[i] = []asgraph.AS{a}
		deps[i] = &Deployment{Full: full.Clone()}
	}
	d, m := asgraph.AS(17), nonStubs[0]
	b.Run("from-scratch", func(b *testing.B) {
		e := NewEngine(g, policy.Sec2nd)
		_ = e.Run(d, m, deps[0]) // steady state even at -benchtime 1x
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Run(d, m, deps[i%chainLen])
		}
	})
	b.Run("delta", func(b *testing.B) {
		e := NewEngine(g, policy.Sec2nd)
		prev := e.Run(d, m, deps[0])
		// Warm the delta scratch too, then rewind the chain so the
		// timed loop still walks it from the start.
		_ = e.RunDelta(prev, added[1], nil, deps[1], nil)
		prev = e.Run(d, m, deps[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i%(chainLen-1) + 1
			if k == 1 {
				b.StopTimer()
				prev = e.Run(d, m, deps[0])
				b.StartTimer()
			}
			prev = e.RunDelta(prev, added[k], nil, deps[k], nil)
		}
	})
}

// BenchmarkDeltaThreshold compares the two delta-fallback bounds on the
// workload the bound exists for: a one-stub-at-a-time rollout, the
// finest-grained chain the paper's figures imply. Securing one stub
// dirties only the stub and its providers, so the delta should stay
// incremental at every step; the edge-volume bound (default) charges
// the dirty region by its adjacency size, while the legacy vertex-count
// bound can misjudge regions whose few members carry most of the
// graph's edges (and, conversely, fall back on thousands of cheap
// stubs).
func BenchmarkDeltaThreshold(b *testing.B) {
	g, _ := topogen.MustGenerate(topogen.Params{N: 4000, Seed: 1})
	n := g.N()
	var stubs []asgraph.AS
	for v := 0; v < n; v++ {
		if g.IsAnyStub(asgraph.AS(v)) {
			stubs = append(stubs, asgraph.AS(v))
		}
	}
	const chainLen = 256
	if len(stubs) < chainLen {
		b.Fatalf("fixture has only %d stubs", len(stubs))
	}
	deps := make([]*Deployment, chainLen)
	added := make([][]asgraph.AS, chainLen)
	full := asgraph.NewSet(n)
	for i := 0; i < chainLen; i++ {
		full.Add(stubs[i])
		added[i] = []asgraph.AS{stubs[i]}
		deps[i] = &Deployment{Full: full.Clone()}
	}
	d, m := asgraph.AS(17), asgraph.NonStubs(g)[0]
	for _, bc := range []struct {
		name   string
		vertex bool
	}{
		{"edge-volume", false},
		{"vertex-count", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e := NewEngine(g, policy.Sec2nd)
			e.vertexFallback = bc.vertex
			prev := e.Run(d, m, deps[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i%(chainLen-1) + 1
				if k == 1 {
					b.StopTimer()
					prev = e.Run(d, m, deps[0])
					b.StartTimer()
				}
				prev = e.RunDelta(prev, added[k], nil, deps[k], nil)
			}
			if e.deltaFallbacks > 0 {
				b.Logf("%d of %d delta steps fell back", e.deltaFallbacks, b.N)
			}
		})
	}
}

// BenchmarkEngineRunSparse measures runs that touch only a small part of
// the graph: 100 disconnected 40-AS provider trees, attacks staying
// within one tree. The epoch reset pays O(touched) per run where the
// full-clear baseline still pays O(n), so this is the regime the
// rollback exists for.
func BenchmarkEngineRunSparse(b *testing.B) {
	const clusters, size = 100, 40
	gb := asgraph.NewBuilder(clusters * size)
	for c := 0; c < clusters; c++ {
		base := asgraph.AS(c * size)
		for i := 1; i < size; i++ {
			gb.AddProviderCustomer(base+asgraph.AS((i-1)/2), base+asgraph.AS(i))
		}
	}
	g := gb.MustBuild()
	full := asgraph.NewSet(g.N())
	for v := 0; v < g.N(); v += 3 {
		full.Add(asgraph.AS(v))
	}
	dep := &Deployment{Full: full}
	for _, bc := range []struct {
		name string
		opts []Option
	}{
		{"epoch-reset", nil},
		{"full-clear", []Option{WithFullClearReset()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e := NewEngine(g, policy.Sec2nd, bc.opts...)
			_ = e.Run(0, 1, dep) // steady state even at -benchtime 1x
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := asgraph.AS(i % clusters * size)
				_ = e.Run(base, base+asgraph.AS(i%(size-1)+1), dep)
			}
		})
	}
}
